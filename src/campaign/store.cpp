#include "campaign/store.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fsync.hpp"
#include "util/json.hpp"
#include "util/jsonl.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace spgcmp::campaign {

namespace fs = std::filesystem;

namespace {

// Temp-file name for an atomic rename install, unique per *writer*, not
// per process: in-process worker threads share a pid, so pid alone would
// make them share one temp file and the first rename would strand the
// others with ENOENT.  pid keeps independent worker processes sharing a
// campaign directory apart; the atomic sequence keeps threads apart.
std::string unique_tmp_path(const std::string& base) {
  static std::atomic<unsigned> tmp_seq{0};
  const unsigned seq = tmp_seq.fetch_add(1, std::memory_order_relaxed);
#ifndef _WIN32
  return base + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
         std::to_string(seq);
#else
  return base + ".tmp." + std::to_string(seq);
#endif
}

}  // namespace

CampaignStore::CampaignStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) throw std::invalid_argument("campaign directory is empty");
}

std::string CampaignStore::spec_path() const { return dir_ + "/spec.campaign"; }
std::string CampaignStore::shards_path() const { return dir_ + "/shards.jsonl"; }
std::string CampaignStore::manifest_path() const { return dir_ + "/MANIFEST.json"; }

void CampaignStore::set_worker(const std::string& worker) {
  std::string safe = worker;
  for (char& c : safe) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  worker_ = safe;
}

std::string CampaignStore::append_path() const {
  if (worker_.empty()) return shards_path();
  return dir_ + "/shards-" + worker_ + ".jsonl";
}

bool CampaignStore::initialized() const { return fs::exists(spec_path()); }

void CampaignStore::initialize(const CampaignSpec& spec) {
  fs::create_directories(dir_);
  const std::string text = spec.to_text();
  if (initialized()) {
    std::ifstream is(spec_path());
    std::ostringstream existing;
    existing << is.rdbuf();
    if (existing.str() != text) {
      throw std::runtime_error(dir_ +
                               ": already holds a different campaign spec; "
                               "use a fresh directory or resume without --spec");
    }
    return;  // same spec: idempotent init, keep completed shards
  }
  // Written to a per-writer temp and renamed into place: N workers
  // initializing the same directory concurrently each install a complete
  // spec (same bytes — they parsed the same input), and no reader ever
  // sees a half-written one.
  const std::string tmp = unique_tmp_path(spec_path());
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write " + tmp);
    os << text;
    os.flush();
    if (!os.good()) throw std::runtime_error("error writing " + tmp);
  }
  util::fsync_file(tmp);
  std::error_code ec;
  fs::rename(tmp, spec_path(), ec);
  if (ec) {
    throw std::runtime_error("cannot install " + spec_path() + ": " +
                             ec.message());
  }
  util::fsync_parent_dir(spec_path());
}

CampaignSpec CampaignStore::load_spec() const {
  std::ifstream is(spec_path());
  if (!is) {
    throw std::runtime_error(dir_ + ": not an initialized campaign directory (" +
                             spec_path() + " missing)");
  }
  return CampaignSpec::parse(is);
}

CampaignStore::ShardMap CampaignStore::load_shards() const {
  // The shared log first, then every worker log in sorted order: a fixed
  // read order plus keep-first dedup makes the loaded map deterministic
  // for any interleaving of workers (duplicate records are deterministic
  // replays of the same instances anyway).
  std::vector<std::string> logs{shards_path()};
  {
    std::error_code ec;
    std::vector<std::string> worker_logs;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 13 && name.rfind("shards-", 0) == 0 &&
          name.substr(name.size() - 6) == ".jsonl") {
        worker_logs.push_back(entry.path().string());
      }
    }
    std::sort(worker_logs.begin(), worker_logs.end());
    logs.insert(logs.end(), worker_logs.begin(), worker_logs.end());
  }

  ShardMap shards;
  for (const auto& log_path : logs) {
    load_shard_log(log_path, shards);
  }
  return shards;
}

void CampaignStore::load_shard_log(const std::string& path,
                                   ShardMap& shards) const {
  for (const auto& rec : util::read_jsonl(path)) {
    const std::string& sweep = rec.at("sweep").as_string("shard record 'sweep'");
    const auto shard =
        static_cast<std::size_t>(rec.at("shard").as_number("shard record 'shard'"));
    ShardRecord record;
    // Optional: logs written before shard timing existed lack the field.
    if (const auto* wall = rec.find("wall_seconds"); wall != nullptr) {
      record.wall_seconds = wall->as_number("shard record 'wall_seconds'");
    }
    std::vector<InstanceResult>& results = record.results;
    for (const auto& inst : rec.at("instances").as_array("shard record 'instances'")) {
      InstanceResult r;
      r.period = inst.at("period").as_number("instance 'period'");
      for (const auto& e : inst.at("energy").as_array("instance 'energy'")) {
        r.energy.push_back(e.as_number("instance 'energy' entry"));
      }
      for (const auto& s : inst.at("success").as_array("instance 'success'")) {
        r.success.push_back(s.as_number("instance 'success' entry") != 0.0);
      }
      if (r.success.size() != r.energy.size()) {
        throw std::runtime_error(path + ": instance arity mismatch in '" +
                                 sweep + "' shard " + std::to_string(shard));
      }
      results.push_back(std::move(r));
    }
    shards.emplace(std::make_pair(sweep, shard), std::move(record));
  }
}

void CampaignStore::append_shard(const std::string& sweep, std::size_t shard,
                                 const std::vector<InstanceResult>& results,
                                 double wall_seconds) {
  util::JsonlWriter log(append_path());
  log.append([&](util::JsonWriter& w) {
    w.begin_object();
    w.kv("sweep", sweep);
    w.kv("shard", static_cast<std::uint64_t>(shard));
    if (wall_seconds >= 0.0) w.kv("wall_seconds", wall_seconds);
    w.key("instances");
    w.begin_array();
    for (const auto& r : results) {
      w.begin_object();
      w.kv("period", r.period);
      w.key("energy");
      w.value(r.energy);
      w.key("success");
      {
        std::vector<std::size_t> flags(r.success.begin(), r.success.end());
        w.value(flags);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  });
}

void CampaignStore::write_manifest(const Manifest& m) const {
  // Per-writer temp name: concurrent leased workers (threads or
  // processes) checkpoint the manifest independently; a shared temp
  // would let one writer's rename strand another's with ENOENT.
  const std::string tmp = unique_tmp_path(manifest_path());
  {
    // Truncate explicitly: a stale larger tmp from an earlier failed
    // attempt must not leave trailing bytes behind the new document.
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write " + tmp);
    util::JsonWriter w(os);
    w.begin_object();
    w.kv("campaign", m.campaign);
    w.kv("shards_total", static_cast<std::uint64_t>(m.shards_total));
    w.kv("shards_done", static_cast<std::uint64_t>(m.shards_done));
    w.kv("wall_seconds_done", m.wall_seconds_done);
    w.end_object();
    // The stream never threw, so a full disk surfaces only here: check
    // before the rename installs a truncated manifest over a good one.
    os.flush();
    if (!os.good()) {
      throw std::runtime_error("error writing " + tmp + " (disk full?)");
    }
  }
  // Durable atomic install: data to disk, then rename, then the directory
  // mutation to disk — a crash leaves either the old or the new manifest,
  // never a torn or vanished one.
  util::fsync_file(tmp);
  std::error_code ec;
  fs::rename(tmp, manifest_path(), ec);
  if (ec) {
    throw std::runtime_error("cannot install " + manifest_path() + ": " +
                             ec.message());
  }
  util::fsync_parent_dir(manifest_path());
}

std::optional<CampaignStore::Manifest> CampaignStore::read_manifest() const {
  std::ifstream is(manifest_path());
  if (!is) return std::nullopt;
  std::ostringstream text;
  text << is.rdbuf();
  const util::JsonValue doc = util::parse_json(text.str());
  Manifest m;
  m.campaign = doc.at("campaign").as_string("manifest 'campaign'");
  m.shards_total = static_cast<std::size_t>(
      doc.at("shards_total").as_number("manifest 'shards_total'"));
  m.shards_done = static_cast<std::size_t>(
      doc.at("shards_done").as_number("manifest 'shards_done'"));
  // Optional: manifests written before shard timing existed lack it.
  if (const auto* wall = doc.find("wall_seconds_done"); wall != nullptr) {
    m.wall_seconds_done = wall->as_number("manifest 'wall_seconds_done'");
  }
  return m;
}

}  // namespace spgcmp::campaign
