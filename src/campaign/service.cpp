#include "campaign/service.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "campaign/lease.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace spgcmp::campaign {

std::size_t StatusReport::shards_done() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sweeps) n += s.shards_done;
  return n;
}

std::size_t StatusReport::shards_total() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sweeps) n += s.shards_total;
  return n;
}

double StatusReport::wall_seconds() const noexcept {
  double t = 0.0;
  for (const auto& s : sweeps) t += s.wall_seconds;
  return t;
}

std::size_t StatusReport::shards_timed() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sweeps) n += s.shards_timed;
  return n;
}

std::size_t StatusReport::shards_leased() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sweeps) n += s.shards_leased;
  return n;
}

double StatusReport::shards_per_second() const noexcept {
  const double wall = wall_seconds();
  if (shards_timed() == 0 || wall <= 0.0) return 0.0;
  return static_cast<double>(shards_timed()) / wall;
}

double StatusReport::eta_seconds() const noexcept {
  const double rate = shards_per_second();
  if (rate <= 0.0) return -1.0;
  const std::size_t remaining = shards_total() - shards_done();
  return static_cast<double>(remaining) / rate;
}

void render_status_json(const StatusReport& rep, std::ostream& os) {
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("campaign", rep.campaign);
  w.kv("complete", rep.shards_done() == rep.shards_total());
  w.kv("shards_done", static_cast<std::uint64_t>(rep.shards_done()));
  w.kv("shards_total", static_cast<std::uint64_t>(rep.shards_total()));
  w.kv("shards_leased", static_cast<std::uint64_t>(rep.shards_leased()));
  w.kv("shards_timed", static_cast<std::uint64_t>(rep.shards_timed()));
  w.kv("wall_seconds", rep.wall_seconds());
  w.key("shards_per_second");
  if (rep.shards_timed() == 0) {
    w.null();
  } else {
    w.value(rep.shards_per_second());
  }
  w.key("eta_seconds");
  if (rep.eta_seconds() < 0.0) {
    w.null();
  } else {
    w.value(rep.eta_seconds());
  }
  w.key("sweeps");
  w.begin_array();
  for (const auto& s : rep.sweeps) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("shards_done", static_cast<std::uint64_t>(s.shards_done));
    w.kv("shards_total", static_cast<std::uint64_t>(s.shards_total));
    w.kv("shards_leased", static_cast<std::uint64_t>(s.shards_leased));
    w.kv("instances_total", static_cast<std::uint64_t>(s.instances_total));
    w.kv("shards_timed", static_cast<std::uint64_t>(s.shards_timed));
    w.kv("wall_seconds", s.wall_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();  // the indented writer terminates the document's newline
}

CampaignService::CampaignService(CampaignSpec spec, const std::string& dir)
    : spec_(std::move(spec)), store_(dir) {
  store_.initialize(spec_);
}

CampaignService CampaignService::open(const std::string& dir) {
  CampaignStore store(dir);
  return CampaignService(store.load_spec(), dir);
}

std::vector<SweepPlan> CampaignService::plans() const {
  std::vector<SweepPlan> out;
  out.reserve(spec_.sweeps.size());
  for (const auto& s : spec_.sweeps) out.emplace_back(s, spec_.topology);
  return out;
}

double CampaignService::execute_shard(const SweepPlan& plan, std::size_t shard,
                                      std::size_t threads,
                                      const ServiceOptions& opt) {
  const auto [first, last] = plan.shard_range(shard);
  if (opt.log != nullptr) {
    *opt.log << "[campaign] " << plan.spec().name << " shard " << shard + 1
             << "/" << plan.shard_count() << " (instances " << first << ".."
             << last - 1 << ", " << threads << " threads)\n";
    opt.log->flush();
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<InstanceResult> results;
  {
    // Begin/end so a killed campaign still shows the open shard in a
    // partial trace.
    obs::Span span("campaign.shard", obs::SpanMode::BeginEnd);
    if (span.active()) {
      span.detail("sweep", plan.spec().name);
      span.detail("shard", static_cast<std::uint64_t>(shard));
    }
    results = plan.run_shard(shard, threads);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  store_.append_shard(plan.spec().name, shard, results, wall);
  static auto& m_shards = obs::Registry::instance().counter("campaign.shards");
  static auto& m_wall = obs::Registry::instance().histogram("campaign.shard_us");
  m_shards.inc();
  m_wall.observe(wall * 1e6);
  return wall;
}

RunSummary CampaignService::run(const ServiceOptions& opt) {
  if (opt.worker.empty()) return run_single(opt);
  return run_leased(opt);
}

RunSummary CampaignService::run_single(const ServiceOptions& opt) {
  const auto all = plans();
  const auto done = store_.load_shards();

  RunSummary summary;
  for (const auto& plan : all) summary.shards_total += plan.shard_count();

  std::size_t completed = done.size();
  summary.shards_skipped = completed;

  // Seed the manifest's wall-clock total from already-persisted timings so
  // throughput survives pause/resume cycles.
  double wall_done = 0.0;
  for (const auto& [key, rec] : done) {
    if (rec.wall_seconds >= 0.0) wall_done += rec.wall_seconds;
  }

  const std::size_t threads = harness::normalize_threads(opt.threads);
  bool stopped = false;
  for (const auto& plan : all) {
    if (stopped) break;
    for (std::size_t shard = 0; shard < plan.shard_count(); ++shard) {
      if (done.count({plan.spec().name, shard}) != 0) continue;
      // Polled only between shards, so an interrupt lets the in-flight
      // shard finish and persist before the manifest checkpoint below.
      if (opt.stop != nullptr && opt.stop->load(std::memory_order_relaxed)) {
        summary.interrupted = true;
        stopped = true;
        if (opt.log != nullptr) {
          *opt.log << "[campaign] stop requested; pausing after "
                   << summary.shards_executed << " shards\n";
          opt.log->flush();
        }
        break;
      }
      if (opt.max_shards != 0 && summary.shards_executed >= opt.max_shards) {
        stopped = true;
        break;
      }
      wall_done += execute_shard(plan, shard, threads, opt);
      ++summary.shards_executed;
      ++completed;
      if (opt.checkpoint_every != 0 &&
          summary.shards_executed % opt.checkpoint_every == 0) {
        store_.write_manifest(
            {spec_.name, summary.shards_total, completed, wall_done});
      }
    }
  }

  summary.complete = completed == summary.shards_total;
  store_.write_manifest({spec_.name, summary.shards_total, completed, wall_done});
  if (opt.log != nullptr) {
    *opt.log << "[campaign] " << completed << "/" << summary.shards_total
             << " shards done (" << summary.shards_executed << " executed, "
             << summary.shards_skipped << " resumed)\n";
  }
  return summary;
}

namespace {

/// Shared state between run_leased's claiming thread and its heartbeat
/// thread: `lease_mutex` serializes every LeaseManager call, `hb_mutex` /
/// `hb_cv` carry the heartbeat shutdown signal.
struct LeaseSync {
  spgcmp::util::Mutex lease_mutex;
  spgcmp::util::Mutex hb_mutex;
  spgcmp::util::CondVar hb_cv;
  bool hb_stop SPGCMP_GUARDED_BY(hb_mutex) = false;
};

}  // namespace

RunSummary CampaignService::run_leased(const ServiceOptions& opt) {
  const auto all = plans();
  store_.set_worker(opt.worker);
  LeaseManager leases(store_.dir(), opt.worker, opt.lease_ttl);

  RunSummary summary;
  for (const auto& plan : all) summary.shards_total += plan.shard_count();
  bool skipped_recorded = false;

  // Heartbeat: re-stamp held leases every ttl/3 so a long shard is not
  // reclaimed out from under us.  The lease mutex serializes the stamp
  // against acquire/release on the main thread.
  LeaseSync sync;
  std::thread heartbeat([&] {
    const auto period =
        std::chrono::duration<double>(std::max(opt.lease_ttl / 3.0, 0.2));
    const util::MutexLock lk(sync.hb_mutex);
    while (!sync.hb_stop) {
      // A spurious wakeup without the stop flag just restarts the period —
      // harmless for a keep-alive.
      const bool timed_out = sync.hb_cv.wait_for(sync.hb_mutex, period);
      if (sync.hb_stop) break;
      if (timed_out) {
        const util::MutexLock lg(sync.lease_mutex);
        leases.heartbeat();
      }
    }
  });
  const auto stop_heartbeat = [&] {
    {
      const util::MutexLock lk(sync.hb_mutex);
      sync.hb_stop = true;
    }
    sync.hb_cv.notify_all();
    if (heartbeat.joinable()) heartbeat.join();
  };

  const std::size_t threads = harness::normalize_threads(opt.threads);
  std::size_t completed = 0;
  double wall_done = 0.0;
  bool stopped = false;
  try {
    // Rescan until the campaign is complete or stopped: each pass reloads
    // the shard logs (other workers persist shards concurrently), claims
    // pending unleased shards in deterministic order, and when only other
    // live workers' shards remain, waits a beat and rescans — a worker
    // that crashed mid-shard leaves an expiring lease that a later pass
    // reclaims.
    while (!stopped) {
      const auto done = store_.load_shards();
      completed = done.size();
      wall_done = 0.0;
      for (const auto& [key, rec] : done) {
        if (rec.wall_seconds >= 0.0) wall_done += rec.wall_seconds;
      }
      if (!skipped_recorded) {
        summary.shards_skipped = completed;
        skipped_recorded = true;
      }
      if (completed == summary.shards_total) break;

      bool progress = false;
      bool blocked = false;
      for (const auto& plan : all) {
        if (stopped) break;
        for (std::size_t shard = 0; shard < plan.shard_count(); ++shard) {
          if (done.count({plan.spec().name, shard}) != 0) continue;
          if (opt.stop != nullptr &&
              opt.stop->load(std::memory_order_relaxed)) {
            summary.interrupted = true;
            stopped = true;
            if (opt.log != nullptr) {
              *opt.log << "[campaign] stop requested; pausing after "
                       << summary.shards_executed << " shards\n";
              opt.log->flush();
            }
            break;
          }
          if (opt.max_shards != 0 &&
              summary.shards_executed >= opt.max_shards) {
            stopped = true;
            break;
          }
          bool ours;
          {
            const util::MutexLock lg(sync.lease_mutex);
            ours = leases.acquire(plan.spec().name, shard);
          }
          if (!ours) {
            blocked = true;
            continue;
          }
          // A worker that finished this shard between our reload and this
          // acquire makes us re-execute it; the keep-first log dedup makes
          // the duplicate record harmless (deterministic replay).
          wall_done += execute_shard(plan, shard, threads, opt);
          {
            const util::MutexLock lg(sync.lease_mutex);
            leases.release(plan.spec().name, shard);
          }
          ++summary.shards_executed;
          ++completed;
          progress = true;
          if (opt.checkpoint_every != 0 &&
              summary.shards_executed % opt.checkpoint_every == 0) {
            store_.write_manifest(
                {spec_.name, summary.shards_total, completed, wall_done});
          }
        }
      }
      if (stopped) break;
      if (!blocked && !progress) break;  // nothing pending anywhere
      if (!progress) {
        // Only other live workers' shards remain: wait (stop-aware) for
        // them to finish or their leases to expire, then rescan.
        const double wait_s = std::max(opt.lease_ttl / 3.0, 0.2);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::duration<double>(wait_s);
        while (std::chrono::steady_clock::now() < deadline) {
          if (opt.stop != nullptr &&
              opt.stop->load(std::memory_order_relaxed)) {
            summary.interrupted = true;
            stopped = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    }
  } catch (...) {
    stop_heartbeat();
    throw;
  }
  stop_heartbeat();

  // Final truth from the logs: other workers kept finishing while we ran.
  {
    const auto done = store_.load_shards();
    completed = done.size();
    wall_done = 0.0;
    for (const auto& [key, rec] : done) {
      if (rec.wall_seconds >= 0.0) wall_done += rec.wall_seconds;
    }
  }
  summary.complete = completed == summary.shards_total;
  store_.write_manifest({spec_.name, summary.shards_total, completed, wall_done});
  if (opt.log != nullptr) {
    *opt.log << "[campaign] worker " << opt.worker << ": " << completed << "/"
             << summary.shards_total << " shards done ("
             << summary.shards_executed << " executed here)\n";
  }
  return summary;
}

StatusReport CampaignService::status(double lease_ttl) const {
  const auto done = store_.load_shards();
  const auto leased = scan_leases(store_.dir(), lease_ttl);
  StatusReport rep;
  rep.campaign = spec_.name;
  for (const auto& plan : plans()) {
    SweepStatus s;
    s.name = plan.spec().name;
    s.shards_total = plan.shard_count();
    s.instances_total = plan.instance_count();
    for (std::size_t shard = 0; shard < plan.shard_count(); ++shard) {
      const auto it = done.find({s.name, shard});
      if (it != done.end()) {
        ++s.shards_done;
        if (it->second.wall_seconds >= 0.0) {
          ++s.shards_timed;
          s.wall_seconds += it->second.wall_seconds;
        }
        continue;
      }
      // Pending: leased iff a live worker currently claims it.
      const auto lease = leased.find({s.name, shard});
      if (lease != leased.end() && lease->second.fresh) ++s.shards_leased;
    }
    rep.sweeps.push_back(std::move(s));
  }
  return rep;
}

std::vector<harness::BenchReport> CampaignService::merged_reports() const {
  const auto done = store_.load_shards();
  std::vector<harness::BenchReport> reports;
  // Reserve up front: derived tables hold pointers into `reports`, which a
  // reallocation would invalidate.
  reports.reserve(spec_.sweeps.size() + spec_.tables.size());

  // Sweep reports first, in spec order; remember them for derived tables.
  std::vector<const harness::BenchReport*> by_sweep(spec_.sweeps.size(), nullptr);
  for (std::size_t i = 0; i < spec_.sweeps.size(); ++i) {
    const SweepPlan plan(spec_.sweeps[i], spec_.topology);
    std::vector<InstanceResult> results;
    results.reserve(plan.instance_count());
    for (std::size_t shard = 0; shard < plan.shard_count(); ++shard) {
      const auto it = done.find({plan.spec().name, shard});
      if (it == done.end()) {
        throw std::runtime_error("campaign incomplete: sweep '" +
                                 plan.spec().name + "' is missing shard " +
                                 std::to_string(shard) + " of " +
                                 std::to_string(plan.shard_count()) +
                                 " (run or resume it first)");
      }
      const auto [first, last] = plan.shard_range(shard);
      if (it->second.results.size() != last - first) {
        throw std::runtime_error("sweep '" + plan.spec().name + "' shard " +
                                 std::to_string(shard) +
                                 ": instance count mismatch");
      }
      results.insert(results.end(), it->second.results.begin(),
                     it->second.results.end());
    }
    reports.push_back(sweep_report(spec_.sweeps[i], spec_.topology, results));
  }
  for (std::size_t i = 0; i < spec_.sweeps.size(); ++i) by_sweep[i] = &reports[i];

  for (const auto& t : spec_.tables) {
    std::vector<const harness::BenchReport*> sources;
    std::vector<const SweepSpec*> source_specs;
    for (const auto& src : t.from) {
      for (std::size_t i = 0; i < spec_.sweeps.size(); ++i) {
        if (spec_.sweeps[i].name == src) {
          sources.push_back(by_sweep[i]);
          source_specs.push_back(&spec_.sweeps[i]);
        }
      }
    }
    reports.push_back(table_report(t, sources, source_specs));
  }
  return reports;
}

std::vector<std::string> CampaignService::merge(const std::string& out_dir) const {
  // Build everything before writing anything: an incomplete campaign must
  // not leave a half-merged output directory behind.
  const auto reports = merged_reports();
  std::vector<std::string> paths;
  paths.reserve(reports.size());
  for (const auto& rep : reports) {
    paths.push_back(rep.write_json_file(out_dir));
  }
  return paths;
}

}  // namespace spgcmp::campaign
