#include "campaign/report.hpp"

#include <stdexcept>
#include <string>

#include "spg/streamit.hpp"
#include "util/table.hpp"

namespace spgcmp::campaign {

namespace {

/// Tag a report with its non-default topology.  The default mesh adds no
/// meta entry, keeping mesh outputs byte-identical across versions.
void tag_topology(harness::BenchReport& rep, const std::string& topology) {
  if (topology != "mesh") rep.meta.emplace_back("topology", topology);
}

harness::BenchReport streamit_sweep_report(
    const SweepSpec& spec, const std::string& topology,
    const std::vector<InstanceResult>& results) {
  harness::BenchReport rep;
  rep.name = spec.name;
  rep.metric = "normalized_energy";
  rep.meta = {{"suite", "streamit"},
              {"grid", std::to_string(spec.rows) + "x" + std::to_string(spec.cols)}};
  tag_topology(rep, topology);
  rep.heuristics = sweep_solver_names(spec);
  std::size_t k = 0;
  for (const auto& [label, ccr] : streamit_ccrs()) {
    for (const auto& info : spg::streamit_table()) {
      const InstanceResult& r = results[k++];
      harness::BenchCell cell;
      cell.labels = {{"ccr", label},
                     {"app", info.name},
                     {"app_index", std::to_string(info.index)}};
      cell.period = r.period;
      cell.workloads = 1;
      cell.values.reserve(r.energy.size());
      cell.failures.reserve(r.energy.size());
      for (std::size_t h = 0; h < r.energy.size(); ++h) {
        cell.values.push_back(r.normalized_energy(h));
        cell.failures.push_back(r.success[h] ? 0 : 1);
      }
      rep.cells.push_back(std::move(cell));
    }
  }
  return rep;
}

harness::BenchReport random_sweep_report(
    const SweepSpec& spec, const std::string& topology,
    const std::vector<InstanceResult>& results) {
  harness::BenchReport rep;
  rep.name = spec.name;
  rep.metric = "mean_inverse_energy";
  rep.meta = {{"suite", "random"},
              {"n", std::to_string(spec.n)},
              {"grid", std::to_string(spec.rows) + "x" + std::to_string(spec.cols)},
              {"apps", std::to_string(spec.apps)},
              {"seed_base", std::to_string(spec.seed_base)}};
  tag_topology(rep, topology);
  rep.heuristics = sweep_solver_names(spec);
  std::size_t k = 0;
  for (const double ccr : random_ccrs()) {
    for (const int y : spec.elevations) {
      harness::BenchCell cell;
      cell.labels = {{"ccr", util::fmt_double(ccr, 3)},
                     {"elevation", std::to_string(y)}};
      cell.period = 0.0;
      cell.workloads = spec.apps;
      // Mean normalized 1/E over the point's instances, summed in instance
      // order — the exact arithmetic of SweepEngine::aggregate, so merged
      // campaigns match one-shot runs bit for bit.
      if (spec.apps > 0) {
        const std::size_t H = results[k].energy.size();
        cell.values.assign(H, 0.0);
        cell.failures.assign(H, 0);
        for (std::size_t w = 0; w < spec.apps; ++w) {
          const InstanceResult& r = results[k + w];
          for (std::size_t h = 0; h < H; ++h) {
            if (r.success[h]) {
              cell.values[h] += r.normalized_inverse_energy(h);
            } else {
              ++cell.failures[h];
            }
          }
        }
        for (std::size_t h = 0; h < H; ++h) {
          cell.values[h] /= static_cast<double>(spec.apps);
        }
        k += spec.apps;
      }
      // apps == 0 yields an empty aggregate; keep cells full-width so the
      // printers and JSON stay well-formed.
      cell.values.resize(rep.heuristics.size(), 0.0);
      cell.failures.resize(rep.heuristics.size(), 0);
      rep.cells.push_back(std::move(cell));
    }
  }
  return rep;
}

}  // namespace

harness::BenchReport sweep_report(const SweepSpec& spec,
                                  const std::string& topology,
                                  const std::vector<InstanceResult>& results) {
  const std::size_t expected =
      spec.kind == SweepKind::Streamit
          ? streamit_ccrs().size() * spg::streamit_table().size()
          : random_ccrs().size() * spec.elevations.size() * spec.apps;
  if (results.size() != expected) {
    throw std::invalid_argument("sweep '" + spec.name + "': have " +
                                std::to_string(results.size()) + " of " +
                                std::to_string(expected) + " instance results");
  }
  return spec.kind == SweepKind::Streamit
             ? streamit_sweep_report(spec, topology, results)
             : random_sweep_report(spec, topology, results);
}

std::vector<std::size_t> streamit_failure_totals(const harness::BenchReport& report) {
  std::vector<std::size_t> totals(report.heuristics.size(), 0);
  for (const auto& cell : report.cells) {
    for (std::size_t h = 0; h < totals.size(); ++h) totals[h] += cell.failures[h];
  }
  return totals;
}

std::vector<std::vector<std::size_t>> random_failures_by_ccr(
    const harness::BenchReport& report, std::size_t elevation_count) {
  std::vector<std::vector<std::size_t>> by_ccr;
  std::size_t k = 0;
  for (std::size_t c = 0; c < random_ccrs().size(); ++c) {
    std::vector<std::size_t> totals(report.heuristics.size(), 0);
    for (std::size_t e = 0; e < elevation_count; ++e) {
      const auto& cell = report.cells[k++];
      for (std::size_t h = 0; h < totals.size(); ++h) totals[h] += cell.failures[h];
    }
    by_ccr.push_back(std::move(totals));
  }
  return by_ccr;
}

harness::BenchReport table_report(
    const TableSpec& spec, const std::vector<const harness::BenchReport*>& sources,
    const std::vector<const SweepSpec*>& source_specs) {
  if (sources.size() != spec.from.size() || source_specs.size() != spec.from.size()) {
    throw std::invalid_argument("table '" + spec.name +
                                "': source count mismatch");
  }
  harness::BenchReport rep;
  rep.name = spec.name;
  rep.metric = "failures";
  // Failure columns are per solver, so every source sweep must run the
  // same solver line-up for the rows to be comparable.
  rep.heuristics = sweep_solver_names(*source_specs[0]);
  for (std::size_t i = 1; i < source_specs.size(); ++i) {
    if (sweep_solver_names(*source_specs[i]) != rep.heuristics) {
      throw std::invalid_argument("table '" + spec.name + "': source sweep '" +
                                  source_specs[i]->name +
                                  "' runs a different solver set than '" +
                                  source_specs[0]->name + "'");
    }
  }

  std::vector<std::string> labels;
  std::vector<std::vector<std::size_t>> rows;
  if (spec.kind == TableKind::StreamitFailures) {
    labels = spec.labels;
    for (const auto* src : sources) rows.push_back(streamit_failure_totals(*src));
  } else {
    rows = random_failures_by_ccr(*sources[0],
                                  source_specs[0]->elevations.size());
    for (const double ccr : random_ccrs()) {
      labels.push_back(util::fmt_double(ccr, 3));
    }
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    harness::BenchCell cell;
    cell.labels = {{spec.key_column, labels[r]}};
    cell.failures = rows[r];
    rep.cells.push_back(std::move(cell));
  }
  return rep;
}

}  // namespace spgcmp::campaign
