#include "campaign/runner.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "spg/generator.hpp"
#include "spg/streamit.hpp"

namespace spgcmp::campaign {

solve::SolverSet sweep_solvers(const SweepSpec& spec) {
  if (spec.solvers.empty()) return solve::SolverSet::paper();
  std::string csv;
  for (const auto& s : spec.solvers) {
    if (!csv.empty()) csv += ',';
    csv += s;
  }
  return solve::SolverSet::parse(csv);
}

std::vector<std::string> sweep_solver_names(const SweepSpec& spec) {
  return sweep_solvers(spec).names();
}

double InstanceResult::best_energy() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t h = 0; h < energy.size(); ++h) {
    if (success[h]) best = std::min(best, energy[h]);
  }
  return std::isfinite(best) ? best : 0.0;
}

double InstanceResult::normalized_energy(std::size_t h) const {
  const double best = best_energy();
  if (best <= 0 || !success[h]) return 0.0;
  return energy[h] / best;
}

double InstanceResult::normalized_inverse_energy(std::size_t h) const {
  const double best = best_energy();
  if (best <= 0 || !success[h]) return 0.0;
  return best / energy[h];
}

InstanceResult summarize(const harness::Campaign& c) {
  InstanceResult r;
  r.period = c.period;
  r.energy.reserve(c.results.size());
  r.success.reserve(c.results.size());
  for (const auto& res : c.results) {
    r.energy.push_back(res.success ? res.eval.energy : 0.0);
    r.success.push_back(res.success ? 1 : 0);
  }
  return r;
}

std::uint64_t random_workload_seed(std::uint64_t seed_base, std::size_t n, int y,
                                   double ccr, std::size_t w) {
  std::uint64_t s = seed_base;
  s = s * 1000003 + n;
  s = s * 1000003 + static_cast<std::uint64_t>(y);
  s = s * 1000003 + static_cast<std::uint64_t>(ccr * 1000);
  s = s * 1000003 + w;
  return s;
}

SweepPlan::SweepPlan(SweepSpec spec, const std::string& topology)
    : spec_(std::move(spec)),
      topology_(topology),
      platform_(cmp::Platform::reference(topology, spec_.rows, spec_.cols)),
      solvers_(sweep_solvers(spec_)),
      shard_size_(spec_.shard_size != 0 ? spec_.shard_size : kDefaultShardSize) {
  if (spec_.kind == SweepKind::Streamit) {
    // CCR-major, application-minor — the cell order of Figures 8/9.
    for (const auto& [label, ccr] : streamit_ccrs()) {
      const double c = ccr;
      for (const auto& info : spg::streamit_table()) {
        tasks_.push_back({0, [&info, c](util::Rng&) {
                            return spg::make_streamit(info, c);
                          }});
      }
    }
  } else {
    // CCR-major, elevation-minor, workload-minor — Figures 10-13.
    const std::size_t n = spec_.n;
    for (const double ccr : random_ccrs()) {
      for (const int y : spec_.elevations) {
        for (std::size_t w = 0; w < spec_.apps; ++w) {
          tasks_.push_back({random_workload_seed(spec_.seed_base, n, y, ccr, w),
                            [n, y, ccr](util::Rng& rng) {
                              spg::Spg g = spg::random_spg(n, y, rng);
                              g.rescale_ccr(ccr);
                              return g;
                            }});
        }
      }
    }
  }
}

std::size_t SweepPlan::shard_count() const noexcept {
  return (tasks_.size() + shard_size_ - 1) / shard_size_;
}

std::pair<std::size_t, std::size_t> SweepPlan::shard_range(
    std::size_t shard) const noexcept {
  const std::size_t first = shard * shard_size_;
  const std::size_t last = std::min(first + shard_size_, tasks_.size());
  return {first, last};
}

std::vector<InstanceResult> SweepPlan::run_shard(std::size_t shard,
                                                 std::size_t threads) const {
  if (shard >= shard_count()) {
    throw std::out_of_range("sweep '" + spec_.name + "': shard " +
                            std::to_string(shard) + " of " +
                            std::to_string(shard_count()));
  }
  const auto [first, last] = shard_range(shard);
  harness::SweepEngineOptions opt;
  opt.threads = harness::normalize_threads(threads);
  const harness::SweepEngine engine(opt);
  const auto campaigns =
      engine.run_task_slice(tasks_, first, last, platform_, solvers_);
  std::vector<InstanceResult> results;
  results.reserve(campaigns.size());
  for (const auto& c : campaigns) results.push_back(summarize(c));
  return results;
}

std::vector<InstanceResult> SweepPlan::run_all(std::size_t threads) const {
  // One engine batch, not shard-by-shard: instances are independent and
  // deterministic, so the results are identical, but a single slice keeps
  // every worker busy across shard boundaries (the one-shot bench path has
  // no persistence barrier to respect).
  harness::SweepEngineOptions opt;
  opt.threads = harness::normalize_threads(threads);
  const harness::SweepEngine engine(opt);
  const auto campaigns =
      engine.run_task_slice(tasks_, 0, tasks_.size(), platform_, solvers_);
  std::vector<InstanceResult> results;
  results.reserve(campaigns.size());
  for (const auto& c : campaigns) results.push_back(summarize(c));
  return results;
}

}  // namespace spgcmp::campaign
