#include "cmp/cmp.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace spgcmp::cmp {

const char* to_string(Dir d) noexcept {
  switch (d) {
    case Dir::North: return "North";
    case Dir::South: return "South";
    case Dir::West: return "West";
    case Dir::East: return "East";
  }
  return "?";
}

Topology::Topology(TopologyKind kind, std::string name, Grid grid)
    : kind_(kind), name_(std::move(name)), grid_(grid) {}

Topology Topology::mesh(int rows, int cols, double bandwidth) {
  Topology t(TopologyKind::Mesh, "mesh", Grid(rows, cols, bandwidth));
  t.build_route_table();
  return t;
}

Topology Topology::snake(int rows, int cols, double bandwidth) {
  Topology t(TopologyKind::Snake, "snake", Grid(rows, cols, bandwidth));
  t.build_route_table();
  return t;
}

Topology Topology::torus(int rows, int cols, double bandwidth) {
  Topology t(TopologyKind::Torus, "torus", Grid(rows, cols, bandwidth));
  t.build_route_table();
  return t;
}

Topology Topology::hetero_mesh(int rows, int cols, double bandwidth,
                               double slow_scale) {
  if (slow_scale <= 0.0 || slow_scale > 1.0) {
    throw std::invalid_argument("Topology: slow_scale must be in (0, 1]");
  }
  Topology t(TopologyKind::HeteroMesh, "hetero", Grid(rows, cols, bandwidth));
  t.speed_scale_.resize(static_cast<std::size_t>(t.core_count()));
  for (int c = 0; c < t.core_count(); ++c) {
    const CoreId id = t.grid_.core_at(c);
    t.speed_scale_[static_cast<std::size_t>(c)] =
        ((id.row + id.col) % 2 == 0) ? 1.0 : slow_scale;
  }
  t.build_route_table();
  return t;
}

Topology Topology::make(const std::string& name, int rows, int cols,
                        double bandwidth) {
  if (name == "mesh") return mesh(rows, cols, bandwidth);
  if (name == "snake") return snake(rows, cols, bandwidth);
  if (name == "torus") return torus(rows, cols, bandwidth);
  if (name == "hetero") return hetero_mesh(rows, cols, bandwidth);
  throw TopologyError("unknown topology '" + name +
                      "' (expected mesh, snake, torus, hetero)");
}

const std::vector<std::string>& Topology::names() {
  static const std::vector<std::string> kNames = {"mesh", "snake", "torus",
                                                  "hetero"};
  return kNames;
}

bool Topology::has_link(CoreId c, Dir d) const noexcept {
  if (!grid_.contains(c)) return false;
  if (grid_.has_neighbor(c, d)) return true;
  if (kind_ != TopologyKind::Torus) return false;
  // Wrap-around links exist only when the dimension has at least two cores
  // (a 1-wide dimension would wrap onto itself).
  switch (d) {
    case Dir::North:
    case Dir::South: return grid_.rows() > 1;
    case Dir::West:
    case Dir::East: return grid_.cols() > 1;
  }
  return false;
}

CoreId Topology::link_target(CoreId c, Dir d) const noexcept {
  if (grid_.has_neighbor(c, d)) return grid_.neighbor(c, d);
  // Torus wrap: step off the edge and re-enter on the opposite side.
  switch (d) {
    case Dir::North: return CoreId{grid_.rows() - 1, c.col};
    case Dir::South: return CoreId{0, c.col};
    case Dir::West: return CoreId{c.row, grid_.cols() - 1};
    case Dir::East: return CoreId{c.row, 0};
  }
  return c;
}

int Topology::link_index(LinkId l) const {
  if (!has_link(l.from, l.dir)) {
    // Appended rather than operator+ chained: GCC 12's -Wrestrict
    // false-positives on literal + std::to_string concatenations at -O2.
    std::string msg = "Topology(";
    msg += name_;
    msg += "): no link out of core (";
    msg += std::to_string(l.from.row);
    msg += ',';
    msg += std::to_string(l.from.col);
    msg += ") toward ";
    msg += to_string(l.dir);
    throw std::out_of_range(msg);
  }
  return grid_.core_index(l.from) * 4 + static_cast<int>(l.dir);
}

std::span<const LinkId> Topology::route(int src_core, int dst_core) const noexcept {
  const auto p = static_cast<std::size_t>(src_core) *
                     static_cast<std::size_t>(core_count()) +
                 static_cast<std::size_t>(dst_core);
  return {route_pool_.data() + route_begin_[p],
          route_pool_.data() + route_begin_[p + 1]};
}

std::span<const int> Topology::route_links(int src_core, int dst_core) const noexcept {
  const auto p = static_cast<std::size_t>(src_core) *
                     static_cast<std::size_t>(core_count()) +
                 static_cast<std::size_t>(dst_core);
  return {route_link_pool_.data() + route_begin_[p],
          route_link_pool_.data() + route_begin_[p + 1]};
}

int Topology::distance(int src_core, int dst_core) const noexcept {
  const auto p = static_cast<std::size_t>(src_core) *
                     static_cast<std::size_t>(core_count()) +
                 static_cast<std::size_t>(dst_core);
  return static_cast<int>(route_begin_[p + 1] - route_begin_[p]);
}

void Topology::append_route(CoreId src, CoreId dst) {
  CoreId cur = src;
  const auto step = [&](Dir d) {
    route_pool_.push_back(LinkId{cur, d});
    cur = link_target(cur, d);
  };

  switch (kind_) {
    case TopologyKind::Mesh:
    case TopologyKind::HeteroMesh:
      while (cur.col != dst.col) step(cur.col < dst.col ? Dir::East : Dir::West);
      while (cur.row != dst.row) step(cur.row < dst.row ? Dir::South : Dir::North);
      break;
    case TopologyKind::Snake: {
      // Follow the boustrophedon embedding; backwards hops reverse the
      // forward hop's direction via opposite().
      const int a = grid_.snake_position(src);
      const int b = grid_.snake_position(dst);
      for (int k = a; k < b; ++k) {
        const CoreId nxt = grid_.snake_core(k + 1);
        step(nxt.row == cur.row ? (nxt.col > cur.col ? Dir::East : Dir::West)
                                : Dir::South);
      }
      for (int k = a; k > b; --k) {
        const CoreId prv = grid_.snake_core(k - 1);
        step(prv.row == cur.row
                 ? opposite(prv.col < cur.col ? Dir::East : Dir::West)
                 : opposite(Dir::South));
      }
      break;
    }
    case TopologyKind::Torus: {
      // Per dimension: the shorter way around, ties toward East/South.
      const int cols = grid_.cols(), rows = grid_.rows();
      const int east = ((dst.col - cur.col) % cols + cols) % cols;
      const Dir h = east <= cols - east ? Dir::East : Dir::West;
      const int hops_h = h == Dir::East ? east : cols - east;
      for (int k = 0; k < hops_h; ++k) step(h);
      const int south = ((dst.row - cur.row) % rows + rows) % rows;
      const Dir v = south <= rows - south ? Dir::South : Dir::North;
      const int hops_v = v == Dir::South ? south : rows - south;
      for (int k = 0; k < hops_v; ++k) step(v);
      break;
    }
  }
  assert(cur == dst);
}

void Topology::build_route_table() {
  const auto n = static_cast<std::size_t>(core_count());
  route_begin_.assign(n * n + 1, 0);
  route_pool_.clear();
  std::size_t p = 0;
  for (int s = 0; s < core_count(); ++s) {
    for (int d = 0; d < core_count(); ++d, ++p) {
      route_begin_[p] = static_cast<std::uint32_t>(route_pool_.size());
      if (s != d) append_route(grid_.core_at(s), grid_.core_at(d));
    }
  }
  route_begin_[p] = static_cast<std::uint32_t>(route_pool_.size());
  route_link_pool_.resize(route_pool_.size());
  for (std::size_t i = 0; i < route_pool_.size(); ++i) {
    route_link_pool_[i] = link_index(route_pool_[i]);
  }
}

Platform Platform::reference(int rows, int cols) {
  return Platform{Topology::mesh(rows, cols, 16.0 * 1.2e9), SpeedModel::xscale(),
                  CommModel{}};
}

Platform Platform::reference(const std::string& topology, int rows, int cols) {
  return Platform{Topology::make(topology, rows, cols, 16.0 * 1.2e9),
                  SpeedModel::xscale(), CommModel{}};
}

}  // namespace spgcmp::cmp
