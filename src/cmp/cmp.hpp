#pragma once

// Chip-multiprocessor platform model — Section 3.2 of the paper.
//
// A p x q grid of homogeneous DVFS cores.  Neighboring cores are joined by
// bidirectional links of bandwidth BW; each direction is an independent
// resource (full duplex), so loads and the period constraint are tracked
// per *directed* link.  The grid can be logically reconfigured as a
// uni-line CMP by embedding a boustrophedon ("snake") order, which visits
// all p*q cores along physically adjacent hops — the configuration used by
// the DPA1D / DPA2D1D heuristics.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace spgcmp::cmp {

/// Core coordinates, 0-based internally ((0,0) is the paper's C_{1,1}).
struct CoreId {
  int row = 0;  ///< u in the paper, 0..p-1
  int col = 0;  ///< v in the paper, 0..q-1
  friend bool operator==(CoreId a, CoreId b) noexcept = default;
};

/// Link directions out of a core.
enum class Dir : std::uint8_t { North = 0, South = 1, West = 2, East = 3 };

/// The reverse direction (North <-> South, West <-> East).
[[nodiscard]] constexpr Dir opposite(Dir d) noexcept {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
    case Dir::West: return Dir::East;
    case Dir::East: return Dir::West;
  }
  return d;
}

/// Human-readable direction name ("North", ...), for diagnostics.
[[nodiscard]] const char* to_string(Dir d) noexcept;

/// A directed link: from `from` toward `dir`.
struct LinkId {
  CoreId from;
  Dir dir = Dir::East;
  friend bool operator==(LinkId a, LinkId b) noexcept = default;
};

/// Rectangular grid topology with uniform link bandwidth.
class Grid {
 public:
  Grid(int rows, int cols, double bandwidth_bytes_per_s);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int core_count() const noexcept { return rows_ * cols_; }
  [[nodiscard]] double bandwidth() const noexcept { return bandwidth_; }

  [[nodiscard]] bool contains(CoreId c) const noexcept {
    return c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_;
  }

  /// Flat index of a core (row-major).
  [[nodiscard]] int core_index(CoreId c) const noexcept { return c.row * cols_ + c.col; }
  [[nodiscard]] CoreId core_at(int index) const noexcept {
    return CoreId{index / cols_, index % cols_};
  }

  /// Neighbor in a given direction; `contains()` must be checked by caller
  /// via `has_neighbor`.
  [[nodiscard]] bool has_neighbor(CoreId c, Dir d) const noexcept;
  [[nodiscard]] CoreId neighbor(CoreId c, Dir d) const noexcept;

  /// Dense index of a directed link, for per-link load accumulators.
  /// Valid links get indices in [0, link_count()).
  [[nodiscard]] int link_index(LinkId l) const;
  [[nodiscard]] int link_count() const noexcept { return 4 * rows_ * cols_; }

  /// XY route: horizontal hops first (west/east), then vertical.
  /// Empty when src == dst.
  [[nodiscard]] std::vector<LinkId> xy_route(CoreId src, CoreId dst) const;

  /// Route along the snake order between two cores (used by the 1D
  /// heuristics): follows consecutive physically-adjacent snake hops from
  /// the earlier snake position to the later one.  Requires
  /// snake_position(src) <= snake_position(dst).
  [[nodiscard]] std::vector<LinkId> snake_route(CoreId src, CoreId dst) const;

  /// Boustrophedon embedding: snake_core(k) is the k-th core along
  /// row 0 left->right, row 1 right->left, ...
  [[nodiscard]] CoreId snake_core(int k) const;
  [[nodiscard]] int snake_position(CoreId c) const noexcept;

  /// Manhattan distance between two cores.
  [[nodiscard]] int manhattan(CoreId a, CoreId b) const noexcept;

 private:
  int rows_;
  int cols_;
  double bandwidth_;
};

/// DVFS speed/power model (Intel XScale values from Section 6.1.2).
/// Speeds in Hz, powers in Watts.  `speed(k)` is increasing in k.
class SpeedModel {
 public:
  /// XScale: speeds {0.15, 0.4, 0.6, 0.8, 1.0} GHz,
  /// dynamic power {80, 170, 400, 900, 1600} mW, leakage 80 mW.
  [[nodiscard]] static SpeedModel xscale();

  SpeedModel(std::vector<double> speeds_hz, std::vector<double> dynamic_w,
             double leak_w);

  [[nodiscard]] std::size_t mode_count() const noexcept { return speeds_.size(); }
  [[nodiscard]] double speed(std::size_t k) const { return speeds_[k]; }
  [[nodiscard]] double dynamic_power(std::size_t k) const { return dynamic_[k]; }
  [[nodiscard]] double leak_power() const noexcept { return leak_; }
  [[nodiscard]] double max_speed() const noexcept { return speeds_.back(); }

  /// Slowest mode able to execute `work` cycles within `period` seconds;
  /// returns mode_count() when even the fastest mode is too slow.
  [[nodiscard]] std::size_t slowest_feasible(double work, double period) const;

  /// Energy (J) for executing `work` cycles at mode k plus leakage over one
  /// period: P_leak * T + (work / s_k) * P_k.
  [[nodiscard]] double core_energy(double work, std::size_t k, double period) const;

 private:
  std::vector<double> speeds_;
  std::vector<double> dynamic_;
  double leak_;
};

/// Communication energy/bandwidth constants (Section 6.1.2).
struct CommModel {
  double energy_per_byte = 6e-12 * 8.0;  ///< E_bit = 6 pJ/bit, per link hop
  double leak_power = 0.0;               ///< P_leak^(comm), 0 in the paper
};

/// Which fabric a Topology models on top of the rectangular core layout.
enum class TopologyKind : std::uint8_t { Mesh, Snake, Torus, HeteroMesh };

/// Unknown topology name passed to Topology::make.  Typed so CLI layers can
/// answer it with the topology listing and a consistent exit code.
class TopologyError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Pluggable interconnect topology over a p x q core layout.
///
/// The Grid stays a pure geometry helper (coordinates, mesh neighbors, the
/// snake embedding); a Topology decides which directed links exist, what
/// the default route between two cores is, and how fast each core runs.
/// Default routes for every ordered core pair are precomputed into one flat
/// table at construction, so hot paths (the mapping::Evaluator, route
/// attachment) serve routes as spans instead of rebuilding std::vectors:
///
///   Mesh        mesh links, XY (horizontal-then-vertical) routes
///   Snake       mesh links, routes follow the boustrophedon embedding
///   Torus       mesh links plus row/column wrap-around links; per-dimension
///               shortest direction, ties broken toward East/South
///   HeteroMesh  mesh links and XY routes, but cores alternate between full
///               speed and a reduced speed scale in a checkerboard pattern
///
/// Every mesh link exists in all four topologies, so a mapping routed with
/// mesh paths stays structurally valid on any of them; only Torus adds
/// links of its own (the wrap-arounds).
class Topology {
 public:
  [[nodiscard]] static Topology mesh(int rows, int cols, double bandwidth);
  [[nodiscard]] static Topology snake(int rows, int cols, double bandwidth);
  [[nodiscard]] static Topology torus(int rows, int cols, double bandwidth);
  /// Checkerboard of full-speed and `slow_scale`-speed cores ((0,0) fast).
  [[nodiscard]] static Topology hetero_mesh(int rows, int cols, double bandwidth,
                                            double slow_scale = 0.75);
  /// Factory by name: "mesh", "snake", "torus" or "hetero"; throws
  /// TopologyError on anything else.
  [[nodiscard]] static Topology make(const std::string& name, int rows, int cols,
                                     double bandwidth);
  /// The names `make` accepts, in presentation order.
  [[nodiscard]] static const std::vector<std::string>& names();

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] int core_count() const noexcept { return grid_.core_count(); }
  /// Dense directed-link index space (shared with Grid::link_index); wrap
  /// links of the torus reuse the indices a mesh leaves unused.
  [[nodiscard]] int link_count() const noexcept { return grid_.link_count(); }

  /// True when the directed link out of `c` toward `d` exists here.
  [[nodiscard]] bool has_link(CoreId c, Dir d) const noexcept;
  /// Endpoint of that link (wraps around on the torus).
  [[nodiscard]] CoreId link_target(CoreId c, Dir d) const noexcept;
  /// Dense index of a directed link; throws std::out_of_range (naming the
  /// core and direction) when the link does not exist in this topology.
  [[nodiscard]] int link_index(LinkId l) const;

  /// Default route between two cores (empty when src == dst), served from
  /// the precomputed table.  Valid for the lifetime of the Topology.
  [[nodiscard]] std::span<const LinkId> route(int src_core, int dst_core) const noexcept;
  /// The same route as dense link indices (avoids link_index() in loops).
  [[nodiscard]] std::span<const int> route_links(int src_core,
                                                 int dst_core) const noexcept;
  /// Hop count of the default route.
  [[nodiscard]] int distance(int src_core, int dst_core) const noexcept;

  /// Relative speed of a core (multiplies every SpeedModel mode); 1.0
  /// everywhere except on the heterogeneous mesh.
  [[nodiscard]] double core_speed_scale(int core) const noexcept {
    return speed_scale_.empty() ? 1.0 : speed_scale_[static_cast<std::size_t>(core)];
  }
  /// True when some core runs below full speed.
  [[nodiscard]] bool heterogeneous() const noexcept { return !speed_scale_.empty(); }

 private:
  Topology(TopologyKind kind, std::string name, Grid grid);
  void build_route_table();
  void append_route(CoreId src, CoreId dst);

  TopologyKind kind_;
  std::string name_;
  Grid grid_;
  std::vector<double> speed_scale_;      ///< empty = homogeneous (all 1.0)
  // Routes for all ordered pairs, flattened: pair (s, d) occupies
  // [route_begin_[s*N+d], route_begin_[s*N+d+1]) in both pools.
  std::vector<LinkId> route_pool_;
  std::vector<int> route_link_pool_;     ///< parallel pool of dense indices
  std::vector<std::uint32_t> route_begin_;
};

/// Bundled platform description handed to heuristics.
struct Platform {
  Topology topology;
  SpeedModel speeds;
  CommModel comm;

  /// Core geometry of the topology (kept as the platform's vocabulary type
  /// for coordinates, indexing and the snake embedding).
  [[nodiscard]] const Grid& grid() const noexcept { return topology.grid(); }

  /// The paper's reference platform: p x q mesh, BW = 16 B * 1.2 GHz,
  /// XScale cores, E_bit = 6 pJ.
  [[nodiscard]] static Platform reference(int rows, int cols);
  /// Reference constants on a named topology ("mesh", "snake", "torus",
  /// "hetero").
  [[nodiscard]] static Platform reference(const std::string& topology, int rows,
                                          int cols);
};

}  // namespace spgcmp::cmp
