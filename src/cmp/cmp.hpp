#pragma once

// Chip-multiprocessor platform model — Section 3.2 of the paper.
//
// A p x q grid of homogeneous DVFS cores.  Neighboring cores are joined by
// bidirectional links of bandwidth BW; each direction is an independent
// resource (full duplex), so loads and the period constraint are tracked
// per *directed* link.  The grid can be logically reconfigured as a
// uni-line CMP by embedding a boustrophedon ("snake") order, which visits
// all p*q cores along physically adjacent hops — the configuration used by
// the DPA1D / DPA2D1D heuristics.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spgcmp::cmp {

/// Core coordinates, 0-based internally ((0,0) is the paper's C_{1,1}).
struct CoreId {
  int row = 0;  ///< u in the paper, 0..p-1
  int col = 0;  ///< v in the paper, 0..q-1
  friend bool operator==(CoreId a, CoreId b) noexcept = default;
};

/// Link directions out of a core.
enum class Dir : std::uint8_t { North = 0, South = 1, West = 2, East = 3 };

/// A directed link: from `from` toward `dir`.
struct LinkId {
  CoreId from;
  Dir dir = Dir::East;
  friend bool operator==(LinkId a, LinkId b) noexcept = default;
};

/// Rectangular grid topology with uniform link bandwidth.
class Grid {
 public:
  Grid(int rows, int cols, double bandwidth_bytes_per_s);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int core_count() const noexcept { return rows_ * cols_; }
  [[nodiscard]] double bandwidth() const noexcept { return bandwidth_; }

  [[nodiscard]] bool contains(CoreId c) const noexcept {
    return c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_;
  }

  /// Flat index of a core (row-major).
  [[nodiscard]] int core_index(CoreId c) const noexcept { return c.row * cols_ + c.col; }
  [[nodiscard]] CoreId core_at(int index) const noexcept {
    return CoreId{index / cols_, index % cols_};
  }

  /// Neighbor in a given direction; `contains()` must be checked by caller
  /// via `has_neighbor`.
  [[nodiscard]] bool has_neighbor(CoreId c, Dir d) const noexcept;
  [[nodiscard]] CoreId neighbor(CoreId c, Dir d) const noexcept;

  /// Dense index of a directed link, for per-link load accumulators.
  /// Valid links get indices in [0, link_count()).
  [[nodiscard]] int link_index(LinkId l) const;
  [[nodiscard]] int link_count() const noexcept { return 4 * rows_ * cols_; }

  /// XY route: horizontal hops first (west/east), then vertical.
  /// Empty when src == dst.
  [[nodiscard]] std::vector<LinkId> xy_route(CoreId src, CoreId dst) const;

  /// Route along the snake order between two cores (used by the 1D
  /// heuristics): follows consecutive physically-adjacent snake hops from
  /// the earlier snake position to the later one.  Requires
  /// snake_position(src) <= snake_position(dst).
  [[nodiscard]] std::vector<LinkId> snake_route(CoreId src, CoreId dst) const;

  /// Boustrophedon embedding: snake_core(k) is the k-th core along
  /// row 0 left->right, row 1 right->left, ...
  [[nodiscard]] CoreId snake_core(int k) const;
  [[nodiscard]] int snake_position(CoreId c) const noexcept;

  /// Manhattan distance between two cores.
  [[nodiscard]] int manhattan(CoreId a, CoreId b) const noexcept;

 private:
  int rows_;
  int cols_;
  double bandwidth_;
};

/// DVFS speed/power model (Intel XScale values from Section 6.1.2).
/// Speeds in Hz, powers in Watts.  `speed(k)` is increasing in k.
class SpeedModel {
 public:
  /// XScale: speeds {0.15, 0.4, 0.6, 0.8, 1.0} GHz,
  /// dynamic power {80, 170, 400, 900, 1600} mW, leakage 80 mW.
  [[nodiscard]] static SpeedModel xscale();

  SpeedModel(std::vector<double> speeds_hz, std::vector<double> dynamic_w,
             double leak_w);

  [[nodiscard]] std::size_t mode_count() const noexcept { return speeds_.size(); }
  [[nodiscard]] double speed(std::size_t k) const { return speeds_[k]; }
  [[nodiscard]] double dynamic_power(std::size_t k) const { return dynamic_[k]; }
  [[nodiscard]] double leak_power() const noexcept { return leak_; }
  [[nodiscard]] double max_speed() const noexcept { return speeds_.back(); }

  /// Slowest mode able to execute `work` cycles within `period` seconds;
  /// returns mode_count() when even the fastest mode is too slow.
  [[nodiscard]] std::size_t slowest_feasible(double work, double period) const;

  /// Energy (J) for executing `work` cycles at mode k plus leakage over one
  /// period: P_leak * T + (work / s_k) * P_k.
  [[nodiscard]] double core_energy(double work, std::size_t k, double period) const;

 private:
  std::vector<double> speeds_;
  std::vector<double> dynamic_;
  double leak_;
};

/// Communication energy/bandwidth constants (Section 6.1.2).
struct CommModel {
  double energy_per_byte = 6e-12 * 8.0;  ///< E_bit = 6 pJ/bit, per link hop
  double leak_power = 0.0;               ///< P_leak^(comm), 0 in the paper
};

/// Bundled platform description handed to heuristics.
struct Platform {
  Grid grid;
  SpeedModel speeds;
  CommModel comm;

  /// The paper's reference platform: p x q grid, BW = 16 B * 1.2 GHz,
  /// XScale cores, E_bit = 6 pJ.
  [[nodiscard]] static Platform reference(int rows, int cols);
};

}  // namespace spgcmp::cmp
