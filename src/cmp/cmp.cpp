#include "cmp/cmp.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace spgcmp::cmp {

Grid::Grid(int rows, int cols, double bandwidth_bytes_per_s)
    : rows_(rows), cols_(cols), bandwidth_(bandwidth_bytes_per_s) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("Grid: need >= 1x1");
  if (bandwidth_ <= 0) throw std::invalid_argument("Grid: bandwidth must be > 0");
}

bool Grid::has_neighbor(CoreId c, Dir d) const noexcept {
  switch (d) {
    case Dir::North: return c.row > 0;
    case Dir::South: return c.row + 1 < rows_;
    case Dir::West: return c.col > 0;
    case Dir::East: return c.col + 1 < cols_;
  }
  return false;
}

CoreId Grid::neighbor(CoreId c, Dir d) const noexcept {
  switch (d) {
    case Dir::North: return CoreId{c.row - 1, c.col};
    case Dir::South: return CoreId{c.row + 1, c.col};
    case Dir::West: return CoreId{c.row, c.col - 1};
    case Dir::East: return CoreId{c.row, c.col + 1};
  }
  return c;
}

int Grid::link_index(LinkId l) const {
  if (!contains(l.from) || !has_neighbor(l.from, l.dir)) {
    throw std::out_of_range("Grid::link_index: invalid link");
  }
  return core_index(l.from) * 4 + static_cast<int>(l.dir);
}

std::vector<LinkId> Grid::xy_route(CoreId src, CoreId dst) const {
  assert(contains(src) && contains(dst));
  std::vector<LinkId> path;
  path.reserve(static_cast<std::size_t>(manhattan(src, dst)));
  CoreId cur = src;
  while (cur.col != dst.col) {
    const Dir d = cur.col < dst.col ? Dir::East : Dir::West;
    path.push_back(LinkId{cur, d});
    cur = neighbor(cur, d);
  }
  while (cur.row != dst.row) {
    const Dir d = cur.row < dst.row ? Dir::South : Dir::North;
    path.push_back(LinkId{cur, d});
    cur = neighbor(cur, d);
  }
  return path;
}

CoreId Grid::snake_core(int k) const {
  if (k < 0 || k >= core_count()) throw std::out_of_range("snake_core");
  const int row = k / cols_;
  const int offset = k % cols_;
  const int col = (row % 2 == 0) ? offset : cols_ - 1 - offset;
  return CoreId{row, col};
}

int Grid::snake_position(CoreId c) const noexcept {
  const int offset = (c.row % 2 == 0) ? c.col : cols_ - 1 - c.col;
  return c.row * cols_ + offset;
}

std::vector<LinkId> Grid::snake_route(CoreId src, CoreId dst) const {
  const int a = snake_position(src);
  const int b = snake_position(dst);
  if (a > b) throw std::invalid_argument("snake_route: src after dst in snake order");
  std::vector<LinkId> path;
  path.reserve(static_cast<std::size_t>(b - a));
  for (int k = a; k < b; ++k) {
    const CoreId cur = snake_core(k);
    const CoreId nxt = snake_core(k + 1);
    Dir d;
    if (nxt.row == cur.row) {
      d = nxt.col > cur.col ? Dir::East : Dir::West;
    } else {
      d = Dir::South;
    }
    path.push_back(LinkId{cur, d});
  }
  return path;
}

int Grid::manhattan(CoreId a, CoreId b) const noexcept {
  return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

SpeedModel SpeedModel::xscale() {
  return SpeedModel({0.15e9, 0.4e9, 0.6e9, 0.8e9, 1.0e9},
                    {0.080, 0.170, 0.400, 0.900, 1.600}, 0.080);
}

SpeedModel::SpeedModel(std::vector<double> speeds_hz, std::vector<double> dynamic_w,
                       double leak_w)
    : speeds_(std::move(speeds_hz)), dynamic_(std::move(dynamic_w)), leak_(leak_w) {
  if (speeds_.empty() || speeds_.size() != dynamic_.size()) {
    throw std::invalid_argument("SpeedModel: speed/power arity mismatch");
  }
  for (std::size_t k = 1; k < speeds_.size(); ++k) {
    if (speeds_[k] <= speeds_[k - 1]) {
      throw std::invalid_argument("SpeedModel: speeds must be increasing");
    }
  }
}

std::size_t SpeedModel::slowest_feasible(double work, double period) const {
  for (std::size_t k = 0; k < speeds_.size(); ++k) {
    if (work <= period * speeds_[k]) return k;
  }
  return speeds_.size();
}

double SpeedModel::core_energy(double work, std::size_t k, double period) const {
  assert(k < speeds_.size());
  return leak_ * period + (work / speeds_[k]) * dynamic_[k];
}

}  // namespace spgcmp::cmp
